#include "src/core/fel.h"

namespace unison {

uint32_t FutureEventList::PlaceInSlot(Event&& event) {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(event);
    return slot;
  }
  const uint32_t slot = static_cast<uint32_t>(slots_.size());
  slots_.push_back(std::move(event));
  return slot;
}

void FutureEventList::Push(Event event) {
  const EventKey key = event.key;
  const uint32_t slot = PlaceInSlot(std::move(event));
  heap_.push_back(HeapNode{key, slot});
  SiftUp(heap_.size() - 1);
}

void FutureEventList::PushAll(std::vector<Event>& src) {
  if (src.empty()) {
    return;
  }
  const size_t old_size = heap_.size();
  heap_.reserve(old_size + src.size());
  for (Event& ev : src) {
    const EventKey key = ev.key;
    const uint32_t slot = PlaceInSlot(std::move(ev));
    heap_.push_back(HeapNode{key, slot});
  }
  src.clear();
  const size_t n = heap_.size();
  const size_t added = n - old_size;
  // Per-element sift-up worst case is added*log2(n) node copies, but DES
  // arrivals carry future timestamps and mostly settle near the leaves, so
  // the observed cost is close to `added`. A bottom-up Floyd rebuild always
  // pays O(n); only take it when the batch rivals the existing heap and the
  // worst case could actually bite. Sifting the new elements in index order
  // is exactly repeated insertion: when SiftUp(i) runs, the prefix [0, i) is
  // already a valid heap.
  if (added < old_size) {
    for (size_t i = old_size; i < n; ++i) {
      SiftUp(i);
    }
  } else {
    for (size_t i = n / 2; i-- > 0;) {
      SiftDown(i);
    }
  }
}

Event FutureEventList::Pop() {
  const uint32_t slot = heap_.front().slot;
  Event out = std::move(slots_[slot]);
  free_slots_.push_back(slot);
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
  return out;
}

Time FutureEventList::NextTimestamp() const {
  return heap_.empty() ? Time::Max() : heap_.front().key.ts;
}

void FutureEventList::Reserve(size_t capacity) {
  heap_.reserve(capacity);
  slots_.reserve(capacity);
  free_slots_.reserve(capacity);
}

void FutureEventList::Clear() {
  heap_.clear();
  slots_.clear();
  free_slots_.clear();
}

size_t FutureEventList::CountBefore(Time bound, size_t cap) const {
  size_t n = 0;
  if (!heap_.empty() && cap > 0) {
    CountBeforeFrom(0, bound, cap, &n);
  }
  return n;
}

void FutureEventList::CountBeforeFrom(size_t i, Time bound, size_t cap,
                                      size_t* n) const {
  // Recursion depth is bounded by the heap height (the array is a complete
  // binary tree), so the stack stays O(log n) even for huge FELs.
  if (i >= heap_.size() || *n >= cap || !(heap_[i].key.ts < bound)) {
    return;
  }
  ++*n;
  CountBeforeFrom(2 * i + 1, bound, cap, n);
  CountBeforeFrom(2 * i + 2, bound, cap, n);
}

void FutureEventList::SiftUp(size_t i) {
  if (i == 0) {
    return;
  }
  size_t parent = (i - 1) / 2;
  if (!(heap_[i].key < heap_[parent].key)) {
    return;
  }
  const HeapNode moving = heap_[i];
  do {
    heap_[i] = heap_[parent];
    i = parent;
    parent = (i - 1) / 2;
  } while (i > 0 && moving.key < heap_[parent].key);
  heap_[i] = moving;
}

void FutureEventList::SiftDown(size_t i) {
  const size_t n = heap_.size();
  size_t child = 2 * i + 1;
  if (child >= n) {
    return;
  }
  if (child + 1 < n && heap_[child + 1].key < heap_[child].key) {
    ++child;
  }
  if (!(heap_[child].key < heap_[i].key)) {
    return;
  }
  const HeapNode moving = heap_[i];
  do {
    heap_[i] = heap_[child];
    i = child;
    child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    if (child + 1 < n && heap_[child + 1].key < heap_[child].key) {
      ++child;
    }
  } while (heap_[child].key < moving.key);
  heap_[i] = moving;
}

}  // namespace unison
