// Thread-local executor identity.
//
// The executor pool stamps each worker thread with its dense worker id (the
// caller of ExecutorPool::Run is worker 0) for the duration of a window, and
// clears it back to kNoExecutor when the pool parks. Everything that shards
// state per executor — notably the FlowMonitor's per-executor stat shards —
// keys off this id rather than std::this_thread::get_id(), because worker
// ids are dense, stable across windows, and identical for every kernel.
//
// Outside a pool body (topology setup, the sequential kernel, between-window
// injection, unit tests) the id is kNoExecutor.
#ifndef UNISON_SRC_CORE_EXECUTOR_ID_H_
#define UNISON_SRC_CORE_EXECUTOR_ID_H_

namespace unison {

inline constexpr int kNoExecutor = -1;

namespace internal {
inline thread_local int t_executor_id = kNoExecutor;
}  // namespace internal

// Dense pool-worker id of the calling thread, or kNoExecutor.
inline int CurrentExecutorId() { return internal::t_executor_id; }

// Set by ExecutorPool around each window body; tests may set it directly to
// exercise per-executor sharding without spinning up a pool.
inline void SetCurrentExecutorId(int id) { internal::t_executor_id = id; }

}  // namespace unison

#endif  // UNISON_SRC_CORE_EXECUTOR_ID_H_
