// The future event list (FEL): a min-priority queue of events keyed by the
// deterministic EventKey order. One FEL exists per logical process; only the
// thread currently executing that LP touches it, so no synchronization is
// needed here (phase barriers in the kernels provide the happens-before
// edges for cross-round handoff).
//
// Storage is split in two so the heap never moves whole events:
//  - slots_: a slab of Events with a free list. An event is moved in once at
//    Push and out once at Pop; between those it never moves again. Freed
//    slots are reused LIFO, so the steady state allocates nothing and the
//    hottest slot stays cache-resident.
//  - heap_: a binary heap of {EventKey, slot} nodes — 40 trivially-copyable
//    bytes. Sift operations shuffle these nodes, not the fat events (an
//    Event carries its callback capture inline, ~180 bytes), which makes a
//    sift level one small copy instead of a type-erased relocation.
#ifndef UNISON_SRC_CORE_FEL_H_
#define UNISON_SRC_CORE_FEL_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "src/core/event.h"

namespace unison {

class FutureEventList {
 public:
  static constexpr size_t kNoCap = std::numeric_limits<size_t>::max();

  void Push(Event event);

  // Bulk insert for the receiving phase: moves every event out of `src`
  // (which is cleared but keeps its capacity — mailbox buffers are reused
  // each round), then restores the heap property in one pass. Equivalent to
  // Push per event but with a single reserve, and a Floyd rebuild instead of
  // per-event sifts when the batch is large relative to the heap.
  void PushAll(std::vector<Event>& src);

  // Precondition: !Empty().
  Event Pop();

  // Timestamp of the earliest event, or Time::Max() when empty.
  Time NextTimestamp() const;

  // Full ordering key of the earliest event; only valid when !Empty().
  const EventKey& PeekKey() const { return heap_.front().key; }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  // Pre-sizes heap nodes and the event slab (setup-time hint; avoids growth
  // reallocations during the first simulation rounds).
  void Reserve(size_t capacity);

  // Number of queued events with timestamp strictly below `bound`, saturated
  // at `cap`. Exploits the heap order: a subtree whose root is >= bound
  // cannot contain anything below it, so the traversal only visits events
  // that actually count (plus their frontier) instead of scanning the whole
  // array. Used by the ByPendingEventCount scheduling metric, which caps the
  // count because LPT only needs the partial order of LP sizes.
  size_t CountBefore(Time bound, size_t cap = kNoCap) const;

  void Clear();

  // Visits every queued event in heap order (the order heap_ stores nodes,
  // not timestamp order). Only slots referenced from the heap are live —
  // freed slab entries hold moved-from husks — so this walks heap_ and
  // indexes into the slab per node. Snapshot capture pairs this with a
  // restore-side bulk PushAll; because EventKeys are globally unique under
  // the deterministic ordering, the rebuilt heap dequeues identically no
  // matter how its array is laid out.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (const HeapNode& node : heap_) {
      fn(slots_[node.slot]);
    }
  }

 private:
  struct HeapNode {
    EventKey key;
    uint32_t slot;
  };

  // Hole-based sifts: the moving node is held in a temporary while
  // ancestors/descendants shift into the hole — one copy per level instead
  // of the three a swap chain costs.
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  uint32_t PlaceInSlot(Event&& event);

  void CountBeforeFrom(size_t i, Time bound, size_t cap, size_t* n) const;

  std::vector<HeapNode> heap_;
  std::vector<Event> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace unison

#endif  // UNISON_SRC_CORE_FEL_H_
