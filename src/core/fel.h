// The future event list (FEL): a min-priority queue of events keyed by the
// deterministic EventKey order. One FEL exists per logical process; only the
// thread currently executing that LP touches it, so no synchronization is
// needed here (phase barriers in the kernels provide the happens-before
// edges for cross-round handoff).
#ifndef UNISON_SRC_CORE_FEL_H_
#define UNISON_SRC_CORE_FEL_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/core/event.h"

namespace unison {

class FutureEventList {
 public:
  void Push(Event event);

  // Precondition: !Empty().
  Event Pop();

  // Timestamp of the earliest event, or Time::Max() when empty.
  Time NextTimestamp() const;

  // Full ordering key of the earliest event; only valid when !Empty().
  const EventKey& PeekKey() const { return heap_.front().key; }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  // Number of queued events with timestamp strictly below `bound`; linear
  // scan, used by the ByPendingEventCount scheduling metric where only the
  // partial order of LP sizes matters.
  size_t CountBefore(Time bound) const;

  void Clear() { heap_.clear(); }

 private:
  // Manual binary heap rather than std::priority_queue so that Pop can move
  // the callback out instead of copying it.
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<Event> heap_;
};

}  // namespace unison

#endif  // UNISON_SRC_CORE_FEL_H_
