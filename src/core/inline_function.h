// A move-only, type-erased callable with small-buffer-optimized storage,
// sized for the event hot path.
//
// Every scheduled event stores its callback. With std::function, any capture
// larger than the implementation's tiny inline buffer (16 bytes on libstdc++)
// heap-allocates — and the common packet-delivery closure captures a ~100-byte
// Packet by value, so every packet on every link paid a malloc/free pair plus
// a pointer-chasing cache miss at dispatch. InlineFunction<N> keeps the
// capture inline in the event itself: constructing, moving and invoking an
// event touches one contiguous object and never the allocator.
//
// Contract:
//  - Move-only. Moving relocates the stored callable (move-construct +
//    destroy source), so moves cost sizeof(callable), not N — small closures
//    stay cheap to sift through the FEL even though the buffer is large.
//  - A callable fits inline when sizeof <= N, its alignment is not
//    over-aligned, and its move constructor is noexcept (required so vector
//    reallocation and heap sifts cannot throw mid-move). Anything else goes
//    through a single heap allocation, counted in alloc_fallbacks() so the
//    fallback rate is observable in tests and benches — on the packet
//    workload it must be zero.
//  - Invoking an empty InlineFunction is undefined, as with the empty
//    std::function it replaces (kernels only store non-empty callbacks).
#ifndef UNISON_SRC_CORE_INLINE_FUNCTION_H_
#define UNISON_SRC_CORE_INLINE_FUNCTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace unison {

// Process-wide count of closures that exceeded the inline buffer and fell
// back to heap allocation. Incremented only on the (rare) fallback path, so
// the counter costs nothing on the fast path; relaxed ordering suffices for a
// statistic.
class InlineFunctionStats {
 public:
  static uint64_t alloc_fallbacks() {
    return Counter().load(std::memory_order_relaxed);
  }
  static void ResetAllocFallbacks() {
    Counter().store(0, std::memory_order_relaxed);
  }
  static void RecordFallback() {
    Counter().fetch_add(1, std::memory_order_relaxed);
  }

 private:
  static std::atomic<uint64_t>& Counter() {
    static std::atomic<uint64_t> count{0};
    return count;
  }
};

template <size_t N>
class InlineFunction {
  static_assert(N >= sizeof(void*), "buffer must hold at least a pointer");

 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
      InlineFunctionStats::RecordFallback();
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when callables of type F are stored inline (compile-time property;
  // exposed for static_asserts at packet-closure construction sites).
  template <typename F>
  static constexpr bool FitsInline() {
    return sizeof(F) <= N && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  // Downcast by ops-table identity: returns the stored callable when it is
  // exactly of type F, else nullptr. Each stored type owns a distinct Ops
  // instance (kInlineOps<F>/kHeapOps<F> are inline variables with one address
  // program-wide), so this is two pointer compares — no RTTI, and zero cost
  // on the invoke path. Snapshot serialization uses it to recognize the named
  // model-event functors inside captured FELs.
  template <typename F>
  F* TryAs() noexcept {
    if (ops_ == &kInlineOps<F>) {
      return std::launder(reinterpret_cast<F*>(buf_));
    }
    if (ops_ == &kHeapOps<F>) {
      return *reinterpret_cast<F**>(buf_);
    }
    return nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs the callable from `src` storage into `dst` storage and
    // destroys the source — the primitive both move operations reduce to.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<F*>(p)))(); },
      [](void* dst, void* src) noexcept {
        F* const from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<F*>(p))->~F(); },
  };

  template <typename F>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**reinterpret_cast<F**>(p))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<F**>(dst) = *reinterpret_cast<F**>(src);
      },
      [](void* p) noexcept { delete *reinterpret_cast<F**>(p); },
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[N];
};

}  // namespace unison

#endif  // UNISON_SRC_CORE_INLINE_FUNCTION_H_
