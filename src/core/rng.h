// Deterministic random number generation.
//
// Every model component draws from its own named stream so that results are
// bit-reproducible regardless of kernel choice, thread count, or the order in
// which other components consume randomness. Streams are xoshiro256**
// generators seeded through SplitMix64 from (global seed, stream id), the
// initialization recommended by the xoshiro authors.
#ifndef UNISON_SRC_CORE_RNG_H_
#define UNISON_SRC_CORE_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

namespace unison {

class Rng {
 public:
  // Stream `stream` of the experiment identified by `seed`. Distinct
  // (seed, stream) pairs yield statistically independent sequences.
  explicit Rng(uint64_t seed, uint64_t stream = 0);

  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [0, n). Uses rejection sampling, so the result is
  // unbiased for every n.
  uint64_t NextU64Below(uint64_t n);

  // Exponentially distributed with the given mean.
  double NextExponential(double mean);

  // Full generator state, for snapshot/restore. A restored stream continues
  // the exact sequence the captured one would have produced.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) {
      s_[i] = s[i];
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace unison

#endif  // UNISON_SRC_CORE_RNG_H_
