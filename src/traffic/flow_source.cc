#include "src/traffic/flow_source.h"

#include <utility>

#include "src/net/model_events.h"
#include "src/net/network.h"
#include "src/net/node.h"

namespace unison {

double MeanArrivalGapSeconds(const TrafficSpec& spec) {
  const uint32_t num_hosts = static_cast<uint32_t>(spec.hosts.size());
  if (num_hosts < 2 || spec.duration.IsZero()) {
    return 0;
  }
  // Aggregate offered load = load * bisection; split evenly across hosts and
  // converted to a per-host Poisson arrival rate via the mean flow size.
  const double offered_bps = spec.load * static_cast<double>(spec.bisection_bps);
  const double per_host_bps = offered_bps / num_hosts;
  const double mean_flow_bits = spec.sizes->MeanBytes() * 8.0;
  const double rate_per_host = per_host_bps / mean_flow_bits;  // Flows per second.
  if (rate_per_host <= 0) {
    return 0;
  }
  return 1.0 / rate_per_host;
}

PoissonFlowStream::PoissonFlowStream(const TrafficSpec* spec, uint32_t host_index,
                                     double mean_gap_s, Rng rng)
    : spec_(spec), host_index_(host_index), mean_gap_s_(mean_gap_s), rng_(rng) {
  t_ = rng_.NextExponential(mean_gap_s_);
}

bool PoissonFlowStream::Next(FlowArrival* out) {
  if (!(t_ < spec_->duration.ToSeconds())) {
    return false;
  }
  const uint32_t num_hosts = static_cast<uint32_t>(spec_->hosts.size());
  const uint32_t h = host_index_;
  // Destination: uniform among other hosts, with the incast/redirect knobs
  // applied on top. The draw order is load-bearing: it defines the stream's
  // RNG consumption for both installation modes.
  uint32_t dst_idx = static_cast<uint32_t>(rng_.NextU64Below(num_hosts - 1));
  if (dst_idx >= h) {
    ++dst_idx;
  }
  if (spec_->incast_ratio > 0 && rng_.NextDouble() < spec_->incast_ratio &&
      h != spec_->victim_index) {
    dst_idx = spec_->victim_index;
  }
  if (spec_->redirect_prob > 0 && rng_.NextDouble() < spec_->redirect_prob &&
      spec_->redirect_begin < num_hosts) {
    dst_idx = spec_->redirect_begin +
              static_cast<uint32_t>(
                  rng_.NextU64Below(num_hosts - spec_->redirect_begin));
  }
  out->src_index = h;
  out->dst_index = dst_idx;
  out->bytes = spec_->sizes->Sample(rng_);
  out->start = spec_->start + Time::Seconds(t_);
  out->install = dst_idx != h;
  t_ += rng_.NextExponential(mean_gap_s_);
  return true;
}

FlowSource::FlowSource(Network* net, const TrafficSpec* spec, uint32_t host_index,
                       double mean_gap_s)
    : net_(net),
      spec_(spec),
      stream_(spec, host_index, mean_gap_s,
              net->MakeRng(spec->rng_stream + host_index)) {}

bool FlowSource::Bootstrap() {
  if (!stream_.Next(&pending_)) {
    return false;
  }
  // Setup / between-window context: Now() is zero, so the absolute arrival
  // time doubles as the delay (same convention as InstallFlow). The event
  // carries registry coordinates, not `this`, so snapshots can serialize it.
  net_->sim().ScheduleOnNode(spec_->hosts[pending_.src_index], pending_.start,
                             FlowArrivalEvent{net_, set_index_, source_index_});
  return true;
}

void FlowSource::OnArrival() {
  // Runs on the source host's LP at pending_.start. Install first, then draw
  // the next arrival: packet events and the rescheduled arrival take their
  // tie-break sequence numbers in the same relative order either way, but
  // installing first mirrors the materialized start-event body exactly.
  if (pending_.install) {
    const NodeId src = spec_->hosts[pending_.src_index];
    const NodeId dst = spec_->hosts[pending_.dst_index];
    const uint32_t flow_id =
        net_->flow_monitor().Register(src, dst, pending_.bytes, pending_.start);
    Node& node = net_->node(src);
    TcpSender* sender = node.AddSender(
        flow_id, std::make_unique<TcpSender>(net_, &node, flow_id, dst,
                                             pending_.bytes, net_->config().tcp));
    sender->Start();
    ++installed_flows_;
    total_bytes_ += pending_.bytes;
  }
  ScheduleNext(pending_.start);
}

void FlowSource::ScheduleNext(Time now) {
  if (!stream_.Next(&pending_)) {
    return;  // Stream dry: the source's event chain ends here.
  }
  // Schedule() keys the event off the current LP context; arrival offsets
  // are nondecreasing, so the delay is never negative.
  net_->sim().Schedule(pending_.start - now,
                       FlowArrivalEvent{net_, set_index_, source_index_});
}

FlowSourceSet::FlowSourceSet(Network* net, TrafficSpec spec)
    : net_(net), spec_(std::move(spec)) {
  mean_gap_s_ = MeanArrivalGapSeconds(spec_);
  if (mean_gap_s_ <= 0) {
    return;
  }
  const uint32_t num_hosts = static_cast<uint32_t>(spec_.hosts.size());
  sources_.reserve(num_hosts);  // Addresses must stay stable once scheduled.
  for (uint32_t h = 0; h < num_hosts; ++h) {
    sources_.emplace_back(net_, &spec_, h, mean_gap_s_);
  }
}

void FlowSourceSet::AssignIndex(uint32_t set_index) {
  for (uint32_t h = 0; h < sources_.size(); ++h) {
    sources_[h].SetIndices(set_index, h);
  }
}

uint32_t FlowSourceSet::Bootstrap() {
  uint32_t pending = 0;
  for (FlowSource& source : sources_) {
    if (source.Bootstrap()) {
      ++pending;
    }
  }
  return pending;
}

uint64_t FlowSourceSet::installed_flows() const {
  uint64_t total = 0;
  for (const FlowSource& source : sources_) {
    total += source.installed_flows();
  }
  return total;
}

uint64_t FlowSourceSet::total_bytes() const {
  uint64_t total = 0;
  for (const FlowSource& source : sources_) {
    total += source.total_bytes();
  }
  return total;
}

StreamingTraffic InstallFlowSources(Network& net, const TrafficSpec& spec) {
  net.Finalize();
  StreamingTraffic out;
  auto set = std::make_shared<FlowSourceSet>(&net, spec);
  // Register before Bootstrap: arrival events carry the set's registry index,
  // which must be assigned before the first event is scheduled. Every set is
  // registered — even a dry one — so indices are dense and stable, matching
  // the serialization order a fork restores against.
  net.RegisterFlowSourceSet(set);
  out.sources = set->Bootstrap();
  out.set = std::move(set);
  return out;
}

StreamingTraffic InjectFlowSources(Network& net, const TrafficSpec& spec) {
  net.Finalize();
  TrafficSpec shifted = spec;
  shifted.start = net.session_time() + spec.start;
  shifted.rng_stream = net.ClaimInjectionStream(spec.rng_stream);
  return InstallFlowSources(net, shifted);
}

}  // namespace unison
