#include "src/traffic/cdf.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace unison {

EmpiricalCdf::EmpiricalCdf(std::vector<Point> points) : points_(std::move(points)) {
  // Mean of the piecewise-linear interpolation: each segment contributes its
  // probability mass times the segment's average size.
  double mean = points_.front().bytes * points_.front().cum_prob;
  for (size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].cum_prob - points_[i - 1].cum_prob;
    mean += mass * 0.5 * (points_[i].bytes + points_[i - 1].bytes);
  }
  mean_ = mean;
}

uint64_t EmpiricalCdf::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(points_.begin(), points_.end(), u,
                             [](const Point& p, double v) { return p.cum_prob < v; });
  if (it == points_.begin()) {
    return static_cast<uint64_t>(std::max(1.0, it->bytes));
  }
  if (it == points_.end()) {
    return static_cast<uint64_t>(std::max(1.0, points_.back().bytes));
  }
  const Point& hi = *it;
  const Point& lo = *std::prev(it);
  const double span = hi.cum_prob - lo.cum_prob;
  const double frac = span <= 0 ? 0.0 : (u - lo.cum_prob) / span;
  const double bytes = lo.bytes + frac * (hi.bytes - lo.bytes);
  return static_cast<uint64_t>(std::max(1.0, bytes));
}

const EmpiricalCdf& EmpiricalCdf::WebSearch() {
  // DCTCP web-search workload (flow sizes in bytes).
  static const EmpiricalCdf cdf({
      {6e3, 0.15},
      {13e3, 0.2},
      {19e3, 0.3},
      {33e3, 0.4},
      {53e3, 0.53},
      {133e3, 0.6},
      {667e3, 0.7},
      {1333e3, 0.8},
      {3333e3, 0.9},
      {6667e3, 0.97},
      {20e6, 1.0},
  });
  return cdf;
}

const EmpiricalCdf& EmpiricalCdf::Grpc() {
  // RPC-dominated workload in the TIMELY style: mostly small messages with a
  // modest heavy tail.
  static const EmpiricalCdf cdf({
      {256, 0.1},
      {512, 0.2},
      {1e3, 0.35},
      {2e3, 0.5},
      {4e3, 0.7},
      {16e3, 0.85},
      {64e3, 0.95},
      {256e3, 0.99},
      {2e6, 1.0},
  });
  return cdf;
}

const EmpiricalCdf& EmpiricalCdf::Uniform(uint64_t min_bytes, uint64_t max_bytes) {
  // Stable storage: callers hold references across later Uniform calls.
  static thread_local std::vector<std::unique_ptr<EmpiricalCdf>> cache;
  for (const auto& c : cache) {
    if (static_cast<uint64_t>(c->points().front().bytes) == min_bytes &&
        static_cast<uint64_t>(c->points().back().bytes) == max_bytes) {
      return *c;
    }
  }
  cache.push_back(std::make_unique<EmpiricalCdf>(
      std::vector<Point>{{static_cast<double>(min_bytes), 0.0},
                         {static_cast<double>(max_bytes), 1.0}}));
  return *cache.back();
}

}  // namespace unison
