// Workload generation.
//
// Flows arrive per host as a Poisson process whose rate is derived from a
// target load (a fraction of the topology's bisection bandwidth, the way the
// paper specifies its workloads). Destinations are uniform random among the
// other hosts, except that with probability `incast_ratio` a flow is
// redirected at a single victim host — the knob behind Fig. 5a/9a — or, for
// Table 2's setup, redirected into the right-most cluster.
//
// Everything is drawn from named RNG streams, so the workload is
// byte-identical for every kernel and thread count. GenerateTraffic
// materializes every flow at setup; the streaming path
// (src/traffic/flow_source.h) draws the identical sequence lazily, one
// pending arrival per host.
#ifndef UNISON_SRC_TRAFFIC_GENERATOR_H_
#define UNISON_SRC_TRAFFIC_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/net/network.h"
#include "src/traffic/cdf.h"

namespace unison {

struct TrafficSpec {
  std::vector<NodeId> hosts;        // Candidate sources and destinations.
  const EmpiricalCdf* sizes = &EmpiricalCdf::WebSearch();
  double load = 0.3;                // Fraction of bisection bandwidth.
  uint64_t bisection_bps = 0;       // From the topology builder.
  Time start;                       // Arrival window offset (default t = 0).
  Time duration;                    // Arrival window [start, start+duration).
  double incast_ratio = 0.0;        // P(redirect to the victim host).
  uint32_t victim_index = 0;        // Index into hosts.
  uint64_t rng_stream = 100;        // Stream id under the network seed.
  // Table 2 variant: redirect with `redirect_prob` into hosts
  // [redirect_begin, hosts.size()) instead of a single victim.
  double redirect_prob = 0.0;
  uint32_t redirect_begin = 0;
};

struct GeneratedTraffic {
  std::vector<uint32_t> flow_ids;
  uint64_t total_bytes = 0;
};

// Draws and installs all flows. Requires a finalized network.
GeneratedTraffic GenerateTraffic(Network& net, const TrafficSpec& spec);

// Incremental injection for windowed sessions: installs `spec`'s flows with
// the arrival window re-anchored at the session's current time, i.e. arrivals
// fall in [session_time + spec.start, session_time + spec.start + duration).
// Call between Run() windows to add load to a live session. Each injection
// automatically derives a distinct rng stream from spec.rng_stream (the
// first injection uses it verbatim), so repeated injections of the same spec
// draw fresh arrivals instead of silently replaying the previous batch.
GeneratedTraffic InjectTraffic(Network& net, const TrafficSpec& spec);

// Permutation traffic: every host sends one `bytes` flow to a fixed distinct
// partner (host i -> host (i + stride) mod n), all starting at `start`.
GeneratedTraffic GeneratePermutation(Network& net, const std::vector<NodeId>& hosts,
                                     uint64_t bytes, Time start, uint32_t stride = 1);

}  // namespace unison

#endif  // UNISON_SRC_TRAFFIC_GENERATOR_H_
