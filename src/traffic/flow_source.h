// Streaming workload generation: lazy per-source Poisson arrivals.
//
// GenerateTraffic materializes every flow of the arrival window at setup —
// O(flows) FEL entries and setup time proportional to simulated duration,
// which is the break point on the way to millions-of-flows scenarios. A
// FlowSource instead keeps one pending arrival per host: an event on the
// host's own LP that installs the drawn flow, draws the next arrival from
// the same per-host RNG stream, and reschedules itself. The FEL holds
// O(hosts) pending arrivals regardless of how long the run is, and setup
// cost is independent of the flow count.
//
// Both modes pull from the same PoissonFlowStream, so they consume each
// host's named RNG stream identically by construction: a streaming run and a
// materialized run of the same TrafficSpec produce bit-identical
// FlowMonitor fingerprints (the arrival chain also steps through draws whose
// destination landed on the source itself, which the materialized generator
// skips without installing — RNG consumption must match exactly).
#ifndef UNISON_SRC_TRAFFIC_FLOW_SOURCE_H_
#define UNISON_SRC_TRAFFIC_FLOW_SOURCE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/rng.h"
#include "src/core/time.h"
#include "src/traffic/generator.h"

namespace unison {

class Network;
struct FlowArrivalEvent;

// One drawn arrival of a per-host Poisson flow stream.
struct FlowArrival {
  uint32_t src_index = 0;  // Index into spec.hosts.
  uint32_t dst_index = 0;
  uint64_t bytes = 0;
  Time start;            // Absolute arrival time (spec.start + offset).
  bool install = false;  // False when the draw landed on the source itself.
};

// Mean inter-arrival gap (seconds) implied by the spec's load, the paper's
// conversion: offered load = load * bisection, split evenly across hosts,
// divided by the mean flow size. Returns 0 when the spec cannot produce
// traffic (fewer than two hosts, zero duration, non-positive rate).
double MeanArrivalGapSeconds(const TrafficSpec& spec);

// The per-host draw sequence of the paper's workload model (destination,
// incast/redirect knobs, size, next gap — in that order). The single source
// of truth for both installation modes.
class PoissonFlowStream {
 public:
  // `spec` must outlive the stream; `rng` is the host's named stream
  // (spec.rng_stream + host_index).
  PoissonFlowStream(const TrafficSpec* spec, uint32_t host_index, double mean_gap_s,
                    Rng rng);

  // Draws the next arrival. Returns false when it falls at or beyond the
  // spec's duration: the stream is exhausted for good (arrival offsets are
  // nondecreasing).
  bool Next(FlowArrival* out);

  // The stream's mutable state (RNG registers plus the next undrawn offset):
  // everything a snapshot needs so a restored stream resumes the exact draw
  // sequence of its parent.
  struct State {
    std::array<uint64_t, 4> rng{};
    double t = 0;
  };
  State Save() const { return State{rng_.state(), t_}; }
  void Restore(const State& s) {
    rng_.set_state(s.rng);
    t_ = s.t;
  }

 private:
  const TrafficSpec* spec_;
  uint32_t host_index_;
  double mean_gap_s_;
  Rng rng_;
  double t_;  // Offset (seconds) of the next undrawn arrival.
};

// One host's streaming source: owns the stream and the single pending
// arrival, installs flows from inside the arrival event (running on the
// host's LP, so registration lands in the executing executor's FlowMonitor
// shard) and reschedules itself until the stream runs dry.
class FlowSource {
 public:
  FlowSource(Network* net, const TrafficSpec* spec, uint32_t host_index,
             double mean_gap_s);

  // Draws the first arrival and schedules it (setup / between-window
  // context). Returns false when the stream is empty from the start.
  bool Bootstrap();

  // Flows actually installed so far (skipped self-draws excluded). Read from
  // a quiescent context.
  uint64_t installed_flows() const { return installed_flows_; }
  uint64_t total_bytes() const { return total_bytes_; }

  // Registry coordinates (set by FlowSourceSet::AssignIndex). Arrival events
  // carry these instead of a raw pointer so they can be serialized and
  // rebound to a forked network's equivalent source.
  void SetIndices(uint32_t set_index, uint32_t source_index) {
    set_index_ = set_index;
    source_index_ = source_index;
  }

  // Snapshot state: the stream registers, the already-drawn pending arrival
  // (its event lives in the captured FEL) and the aggregate counters.
  struct Image {
    PoissonFlowStream::State stream;
    FlowArrival pending;
    uint64_t installed_flows = 0;
    uint64_t total_bytes = 0;
  };
  Image Save() const { return Image{stream_.Save(), pending_, installed_flows_, total_bytes_}; }
  // Restore does NOT reschedule: the pending arrival's event is restored
  // with the rest of the FEL.
  void Restore(const Image& img) {
    stream_.Restore(img.stream);
    pending_ = img.pending;
    installed_flows_ = img.installed_flows;
    total_bytes_ = img.total_bytes;
  }

 private:
  friend struct FlowArrivalEvent;

  void OnArrival();
  void ScheduleNext(Time now);

  Network* net_;
  const TrafficSpec* spec_;
  PoissonFlowStream stream_;
  FlowArrival pending_;
  uint64_t installed_flows_ = 0;
  uint64_t total_bytes_ = 0;
  uint32_t set_index_ = 0;
  uint32_t source_index_ = 0;
};

// Owns one TrafficSpec copy and its per-host sources. Scheduled arrival
// events capture raw FlowSource pointers, so the set must outlive the
// session — InstallFlowSources hands a shared_ptr to the network's
// keepalive list.
class FlowSourceSet {
 public:
  FlowSourceSet(Network* net, TrafficSpec spec);

  // Schedules each host's first arrival; returns the number of sources with
  // a pending arrival (0 when the spec cannot produce traffic).
  uint32_t Bootstrap();

  uint64_t installed_flows() const;
  uint64_t total_bytes() const;
  const TrafficSpec& spec() const { return spec_; }

  // Stamps the network-registry index onto the set's sources so their
  // arrival events carry (set, source) coordinates. Called by
  // Network::RegisterFlowSourceSet.
  void AssignIndex(uint32_t set_index);

  FlowSource& source(uint32_t index) { return sources_[index]; }
  uint32_t num_sources() const { return static_cast<uint32_t>(sources_.size()); }

 private:
  Network* net_;
  TrafficSpec spec_;
  double mean_gap_s_ = 0;
  std::vector<FlowSource> sources_;
};

// Streaming counterpart of GeneratedTraffic. Flow ids are not enumerable up
// front (flows register as they arrive); the set exposes aggregate counters
// instead.
struct StreamingTraffic {
  uint32_t sources = 0;
  std::shared_ptr<FlowSourceSet> set;
};

// Installs one FlowSource per spec host on a finalized network. The network
// retains the set for its lifetime.
StreamingTraffic InstallFlowSources(Network& net, const TrafficSpec& spec);

// Streaming analogue of InjectTraffic: re-anchors the arrival window at the
// session's current time and derives a fresh rng stream per injection (see
// Network::ClaimInjectionStream), so calling it repeatedly with the same
// spec never replays draws.
StreamingTraffic InjectFlowSources(Network& net, const TrafficSpec& spec);

}  // namespace unison

#endif  // UNISON_SRC_TRAFFIC_FLOW_SOURCE_H_
