#include "src/traffic/trace.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "src/net/network.h"

namespace unison {

TraceParseResult InstallFlowsFromCsv(Network& net, std::istream& in) {
  TraceParseResult result;
  std::string line;
  uint32_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim leading whitespace; skip blanks and comments.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      ++result.lines_skipped;
      continue;
    }
    std::istringstream fields(line.substr(start));
    uint64_t src = 0;
    uint64_t dst = 0;
    uint64_t bytes = 0;
    double start_s = 0;
    char c1 = 0;
    char c2 = 0;
    char c3 = 0;
    if (!(fields >> src >> c1 >> dst >> c2 >> bytes >> c3 >> start_s) || c1 != ',' ||
        c2 != ',' || c3 != ',') {
      result.error = "line " + std::to_string(line_no) + ": expected src,dst,bytes,start";
      return result;
    }
    if (src >= net.num_nodes() || dst >= net.num_nodes() || src == dst) {
      result.error = "line " + std::to_string(line_no) + ": bad node ids";
      return result;
    }
    if (start_s < 0) {
      result.error = "line " + std::to_string(line_no) + ": negative start time";
      return result;
    }
    FlowSpec spec;
    spec.src = static_cast<NodeId>(src);
    spec.dst = static_cast<NodeId>(dst);
    spec.bytes = bytes;
    spec.start = Time::Seconds(start_s);
    result.flow_ids.push_back(InstallFlow(net, spec));
    ++result.lines_parsed;
  }
  return result;
}

void WriteFlowsCsv(const Network& net, std::ostream& out) {
  out << "# src,dst,bytes,start_seconds\n";
  const_cast<Network&>(net).flow_monitor().ForEachFlow([&out](const FlowRecord& f) {
    out << f.src << ',' << f.dst << ',' << f.bytes << ',' << f.start.ToSeconds() << '\n';
  });
}

}  // namespace unison
