// Empirical flow-size distributions.
//
// The two workloads the paper's evaluation draws from: the web-search
// distribution measured in the DCTCP paper (Alizadeh et al., SIGCOMM'10) and
// the gRPC-style RPC distribution used by TIMELY (Mittal et al.,
// SIGCOMM'15). Sampling interpolates log-linearly between CDF points, the
// standard approach of simulation harnesses for these traces.
#ifndef UNISON_SRC_TRAFFIC_CDF_H_
#define UNISON_SRC_TRAFFIC_CDF_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"

namespace unison {

class EmpiricalCdf {
 public:
  struct Point {
    double bytes;
    double cum_prob;  // Nondecreasing; last point has cum_prob == 1.
  };

  explicit EmpiricalCdf(std::vector<Point> points);

  // Inverse-transform sample of a flow size in bytes (at least 1).
  uint64_t Sample(Rng& rng) const;

  // Analytic mean of the interpolated distribution; used to convert a target
  // load into a flow arrival rate.
  double MeanBytes() const { return mean_; }

  const std::vector<Point>& points() const { return points_; }

  static const EmpiricalCdf& WebSearch();  // DCTCP web-search flow sizes.
  static const EmpiricalCdf& Grpc();       // TIMELY-style RPC sizes.
  static const EmpiricalCdf& Uniform(uint64_t min_bytes, uint64_t max_bytes);

 private:
  std::vector<Point> points_;
  double mean_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_TRAFFIC_CDF_H_
