// Workload trace I/O: replay flows from a CSV trace and export a generated
// workload back out. The format is the one most public DCN traces reduce to:
//
//   # comment lines and blank lines are ignored
//   src_node,dst_node,bytes,start_seconds
//
// Replaying the same trace under different kernels/configs is the standard
// way to A/B a design change against a recorded workload.
#ifndef UNISON_SRC_TRAFFIC_TRACE_H_
#define UNISON_SRC_TRAFFIC_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/time.h"
#include "src/net/app.h"

namespace unison {

class Network;

struct TraceParseResult {
  std::vector<uint32_t> flow_ids;
  uint32_t lines_parsed = 0;
  uint32_t lines_skipped = 0;  // Comments, blanks.
  std::string error;           // Non-empty on malformed input (parsing stops).
};

// Parses the CSV from `in` and installs every flow. The network must have
// all referenced nodes; out-of-range ids are a parse error.
TraceParseResult InstallFlowsFromCsv(Network& net, std::istream& in);

// Writes the flows registered in the monitor in the same format (only their
// static description: src, dst, bytes, start).
void WriteFlowsCsv(const Network& net, std::ostream& out);

}  // namespace unison

#endif  // UNISON_SRC_TRAFFIC_TRACE_H_
