#include "src/traffic/generator.h"

#include "src/net/app.h"

namespace unison {

GeneratedTraffic GenerateTraffic(Network& net, const TrafficSpec& spec) {
  GeneratedTraffic out;
  const uint32_t num_hosts = static_cast<uint32_t>(spec.hosts.size());
  if (num_hosts < 2 || spec.duration.IsZero()) {
    return out;
  }
  // Aggregate offered load = load * bisection; split evenly across hosts and
  // converted to a per-host Poisson arrival rate via the mean flow size.
  const double offered_bps = spec.load * static_cast<double>(spec.bisection_bps);
  const double per_host_bps = offered_bps / num_hosts;
  const double mean_flow_bits = spec.sizes->MeanBytes() * 8.0;
  const double rate_per_host = per_host_bps / mean_flow_bits;  // Flows per second.
  if (rate_per_host <= 0) {
    return out;
  }
  const double mean_gap_s = 1.0 / rate_per_host;

  for (uint32_t h = 0; h < num_hosts; ++h) {
    Rng rng = net.MakeRng(spec.rng_stream + h);
    double t = rng.NextExponential(mean_gap_s);
    while (t < spec.duration.ToSeconds()) {
      // Destination: uniform among other hosts, with the incast/redirect
      // knobs applied on top.
      uint32_t dst_idx = static_cast<uint32_t>(rng.NextU64Below(num_hosts - 1));
      if (dst_idx >= h) {
        ++dst_idx;
      }
      if (spec.incast_ratio > 0 && rng.NextDouble() < spec.incast_ratio &&
          h != spec.victim_index) {
        dst_idx = spec.victim_index;
      }
      if (spec.redirect_prob > 0 && rng.NextDouble() < spec.redirect_prob &&
          spec.redirect_begin < num_hosts) {
        dst_idx = spec.redirect_begin +
                  static_cast<uint32_t>(
                      rng.NextU64Below(num_hosts - spec.redirect_begin));
      }
      if (dst_idx != h) {
        FlowSpec flow;
        flow.src = spec.hosts[h];
        flow.dst = spec.hosts[dst_idx];
        flow.bytes = spec.sizes->Sample(rng);
        flow.start = spec.start + Time::Seconds(t);
        out.flow_ids.push_back(InstallFlow(net, flow));
        out.total_bytes += flow.bytes;
      }
      t += rng.NextExponential(mean_gap_s);
    }
  }
  return out;
}

GeneratedTraffic InjectTraffic(Network& net, const TrafficSpec& spec) {
  TrafficSpec shifted = spec;
  shifted.start = net.session_time() + spec.start;
  return GenerateTraffic(net, shifted);
}

GeneratedTraffic GeneratePermutation(Network& net, const std::vector<NodeId>& hosts,
                                     uint64_t bytes, Time start, uint32_t stride) {
  GeneratedTraffic out;
  const uint32_t n = static_cast<uint32_t>(hosts.size());
  for (uint32_t i = 0; i < n; ++i) {
    FlowSpec flow;
    flow.src = hosts[i];
    flow.dst = hosts[(i + stride) % n];
    if (flow.src == flow.dst) {
      continue;
    }
    flow.bytes = bytes;
    flow.start = start;
    out.flow_ids.push_back(InstallFlow(net, flow));
    out.total_bytes += bytes;
  }
  return out;
}

}  // namespace unison
