#include "src/traffic/generator.h"

#include "src/net/app.h"
#include "src/traffic/flow_source.h"

namespace unison {

GeneratedTraffic GenerateTraffic(Network& net, const TrafficSpec& spec) {
  GeneratedTraffic out;
  const double mean_gap_s = MeanArrivalGapSeconds(spec);
  if (mean_gap_s <= 0) {
    return out;
  }
  // Same draw sequence as the streaming FlowSource — PoissonFlowStream is
  // the single source of truth — just materialized eagerly: every arrival
  // becomes a setup-time InstallFlow.
  const uint32_t num_hosts = static_cast<uint32_t>(spec.hosts.size());
  for (uint32_t h = 0; h < num_hosts; ++h) {
    PoissonFlowStream stream(&spec, h, mean_gap_s, net.MakeRng(spec.rng_stream + h));
    FlowArrival arrival;
    while (stream.Next(&arrival)) {
      if (!arrival.install) {
        continue;  // Draw landed on the source itself; RNG already advanced.
      }
      FlowSpec flow;
      flow.src = spec.hosts[arrival.src_index];
      flow.dst = spec.hosts[arrival.dst_index];
      flow.bytes = arrival.bytes;
      flow.start = arrival.start;
      out.flow_ids.push_back(InstallFlow(net, flow));
      out.total_bytes += arrival.bytes;
    }
  }
  return out;
}

GeneratedTraffic InjectTraffic(Network& net, const TrafficSpec& spec) {
  net.Finalize();
  TrafficSpec shifted = spec;
  shifted.start = net.session_time() + spec.start;
  // Distinct stream per injection (first injection keeps the base verbatim),
  // so repeated injections of the same spec never replay the same draws.
  shifted.rng_stream = net.ClaimInjectionStream(spec.rng_stream);
  return GenerateTraffic(net, shifted);
}

GeneratedTraffic GeneratePermutation(Network& net, const std::vector<NodeId>& hosts,
                                     uint64_t bytes, Time start, uint32_t stride) {
  GeneratedTraffic out;
  const uint32_t n = static_cast<uint32_t>(hosts.size());
  for (uint32_t i = 0; i < n; ++i) {
    FlowSpec flow;
    flow.src = hosts[i];
    flow.dst = hosts[(i + stride) % n];
    if (flow.src == flow.dst) {
      continue;
    }
    flow.bytes = bytes;
    flow.start = start;
    out.flow_ids.push_back(InstallFlow(net, flow));
    out.total_bytes += bytes;
  }
  return out;
}

}  // namespace unison
