#include "src/costmodel/cost_model.h"

#include <algorithm>
#include <numeric>

#include "src/sched/lpt.h"

namespace unison {

ParallelCostModel::ParallelCostModel(const std::vector<LpRoundCost>& trace, uint32_t num_lps)
    : num_lps_(num_lps) {
  uint32_t rounds = 0;
  for (const LpRoundCost& c : trace) {
    rounds = std::max(rounds, c.round + 1);
  }
  cost_.assign(rounds, std::vector<uint64_t>(num_lps, 0));
  events_.assign(rounds, std::vector<uint32_t>(num_lps, 0));
  pending_.assign(rounds, std::vector<uint32_t>(num_lps, 0));
  for (const LpRoundCost& c : trace) {
    cost_[c.round][c.lp] += c.cpu_ns;
    events_[c.round][c.lp] += c.events;
    pending_[c.round][c.lp] += c.pending;
  }
}

uint64_t ParallelCostModel::SequentialNs() const {
  uint64_t sum = 0;
  for (const auto& round : cost_) {
    sum = std::accumulate(round.begin(), round.end(), sum);
  }
  return sum;
}

ModelResult ParallelCostModel::Barrier(const std::vector<uint32_t>& rank_of_lp,
                                       uint32_t ranks, uint64_t sync_overhead_ns) const {
  ModelResult out;
  out.executor_p_ns.assign(ranks, 0);
  out.executor_s_ns.assign(ranks, 0);
  std::vector<uint64_t> rank_cost(ranks);
  for (const auto& round : cost_) {
    std::fill(rank_cost.begin(), rank_cost.end(), 0);
    for (uint32_t lp = 0; lp < num_lps_; ++lp) {
      rank_cost[rank_of_lp[lp]] += round[lp];
    }
    const uint64_t span = *std::max_element(rank_cost.begin(), rank_cost.end());
    out.round_makespan_ns.push_back(span + sync_overhead_ns);
    out.makespan_ns += span + sync_overhead_ns;
    for (uint32_t r = 0; r < ranks; ++r) {
      out.executor_p_ns[r] += rank_cost[r];
      out.executor_s_ns[r] += span - rank_cost[r] + sync_overhead_ns;
      out.processing_ns += rank_cost[r];
    }
  }
  return out;
}

ModelResult ParallelCostModel::NullMessage(
    const std::vector<std::vector<uint32_t>>& lp_neighbors,
    uint64_t per_round_overhead_ns) const {
  // finish[lp] after round r depends on the LP's own previous finish and its
  // neighbours' previous finishes (their promises gate the next window).
  ModelResult out;
  out.executor_p_ns.assign(num_lps_, 0);
  out.executor_s_ns.assign(num_lps_, 0);
  std::vector<uint64_t> finish(num_lps_, 0);
  std::vector<uint64_t> prev(num_lps_, 0);
  for (const auto& round : cost_) {
    prev = finish;
    uint64_t span_end = 0;
    for (uint32_t lp = 0; lp < num_lps_; ++lp) {
      uint64_t ready = prev[lp];
      for (uint32_t nbr : lp_neighbors[lp]) {
        ready = std::max(ready, prev[nbr]);
      }
      finish[lp] = ready + round[lp] + per_round_overhead_ns;
      out.executor_p_ns[lp] += round[lp];
      out.executor_s_ns[lp] += ready - prev[lp] + per_round_overhead_ns;
      out.processing_ns += round[lp];
      span_end = std::max(span_end, finish[lp]);
    }
    out.round_makespan_ns.push_back(span_end);
  }
  out.makespan_ns = *std::max_element(finish.begin(), finish.end());
  return out;
}

ModelResult ParallelCostModel::Unison(uint32_t workers, SchedulingMetric metric,
                                      uint32_t sched_period,
                                      uint64_t per_round_overhead_ns) const {
  ModelResult out;
  out.executor_p_ns.assign(workers, 0);
  out.executor_s_ns.assign(workers, 0);
  std::vector<uint64_t> estimate(num_lps_, 0);
  std::vector<uint32_t> order(num_lps_);
  std::iota(order.begin(), order.end(), 0);
  const uint32_t period = std::max(1u, sched_period);

  std::vector<uint32_t> assignment;
  for (uint32_t r = 0; r < cost_.size(); ++r) {
    const auto& actual = cost_[r];
    // Refresh the claim order from the selected estimate source.
    if (r % period == 0) {
      switch (metric) {
        case SchedulingMetric::kNone:
          break;  // Keep id order.
        case SchedulingMetric::kByPendingEventCount:
          // What the metric can actually see: events already queued below
          // the window at round start — not the events that will chain in.
          for (uint32_t lp = 0; lp < num_lps_; ++lp) {
            estimate[lp] = pending_[r][lp];
          }
          order = SortByCostDescending(estimate);
          break;
        case SchedulingMetric::kByLastRoundTime:
          if (r > 0) {
            for (uint32_t lp = 0; lp < num_lps_; ++lp) {
              estimate[lp] = cost_[r - 1][lp];
            }
            order = SortByCostDescending(estimate);
          }
          break;
      }
    }
    const uint64_t span = ListScheduleMakespan(actual, order, workers, &assignment);
    const uint64_t ideal =
        ListScheduleMakespan(actual, SortByCostDescending(actual), workers);
    out.round_makespan_ns.push_back(span + per_round_overhead_ns);
    out.round_ideal_ns.push_back(ideal + per_round_overhead_ns);
    out.makespan_ns += span + per_round_overhead_ns;

    std::vector<uint64_t> worker_load(workers, 0);
    for (uint32_t lp = 0; lp < num_lps_; ++lp) {
      worker_load[assignment[lp]] += actual[lp];
      out.processing_ns += actual[lp];
    }
    for (uint32_t w = 0; w < workers; ++w) {
      out.executor_p_ns[w] += worker_load[w];
      out.executor_s_ns[w] += span - worker_load[w] + per_round_overhead_ns;
    }
  }
  return out;
}

double ParallelCostModel::SlowdownFactor(const ModelResult& result) {
  uint64_t actual = 0;
  uint64_t ideal = 0;
  for (size_t i = 0; i < result.round_makespan_ns.size(); ++i) {
    actual += result.round_makespan_ns[i];
    ideal += result.round_ideal_ns[i];
  }
  return ideal == 0 ? 1.0 : static_cast<double>(actual) / static_cast<double>(ideal);
}

}  // namespace unison
