// Virtual-time parallel cost model.
//
// This host exposes a single CPU core, so wall-clock cannot exhibit the
// paper's parallel speedups directly. Instead, one *instrumented* run
// (single worker, per-LP profiling) records the exact processing cost of
// every (round, LP) cell — the same LBTS round structure every conservative
// algorithm shares — and this model replays each algorithm's schedule over
// those measured costs:
//
//   Barrier:      LPs statically pinned to ranks; a round costs the maximum
//                 rank total; ranks idle for the rest (that idle IS the
//                 synchronization time S of §3.2).
//   Null message: one LP per rank; an LP may start round r when it and its
//                 channel neighbours finished round r-1 (the lookahead
//                 window), i.e. longest-path relaxation over the LP graph.
//   Unison:       workers claim LPs longest-estimate-first (the real
//                 scheduler's policy) with the estimate source selectable,
//                 so estimation error shows up exactly as it would live.
//
// Who wins, by what factor, and where crossovers fall are all properties of
// these schedules, not of the host's core count — see DESIGN.md §2.
#ifndef UNISON_SRC_COSTMODEL_COST_MODEL_H_
#define UNISON_SRC_COSTMODEL_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/stats/profiler.h"

namespace unison {

struct ModelResult {
  uint64_t makespan_ns = 0;    // Modeled parallel wall time.
  uint64_t processing_ns = 0;  // Sum of all event-processing costs.
  // Per-executor totals; S = makespan - P - M for each executor.
  std::vector<uint64_t> executor_p_ns;
  std::vector<uint64_t> executor_s_ns;
  // Per-round makespans (for S/T-per-round figures).
  std::vector<uint64_t> round_makespan_ns;
  std::vector<uint64_t> round_ideal_ns;  // Unison model only: LPT on true costs.

  double SyncRatio() const {
    const uint64_t total =
        makespan_ns * (executor_p_ns.empty() ? 1 : executor_p_ns.size());
    uint64_t s = 0;
    for (uint64_t v : executor_s_ns) {
      s += v;
    }
    return total == 0 ? 0.0 : static_cast<double>(s) / static_cast<double>(total);
  }
};

class ParallelCostModel {
 public:
  // `trace` comes from Profiler::MergedLpRounds() of an instrumented run.
  ParallelCostModel(const std::vector<LpRoundCost>& trace, uint32_t num_lps);

  uint32_t rounds() const { return static_cast<uint32_t>(cost_.size()); }
  uint32_t num_lps() const { return num_lps_; }
  uint64_t SequentialNs() const;

  // Raw per-round, per-LP cost matrix (benches derive custom per-round
  // breakdowns from it).
  const std::vector<std::vector<uint64_t>>& round_costs() const { return cost_; }
  const std::vector<std::vector<uint32_t>>& round_events() const { return events_; }

  // Barrier synchronization with a static LP→rank map. `sync_overhead_ns` is
  // the per-round barrier/allreduce cost.
  ModelResult Barrier(const std::vector<uint32_t>& rank_of_lp, uint32_t ranks,
                      uint64_t sync_overhead_ns) const;

  // Null message with one LP per rank. `per_round_overhead_ns` models the
  // null-message exchange per window.
  ModelResult NullMessage(const std::vector<std::vector<uint32_t>>& lp_neighbors,
                          uint64_t per_round_overhead_ns) const;

  // Unison's load-adaptive scheduling on `workers` cores. `metric` selects
  // the estimate source; `sched_period` mirrors the kernel's re-sort cadence
  // (0 = every round).
  ModelResult Unison(uint32_t workers, SchedulingMetric metric, uint32_t sched_period,
                     uint64_t per_round_overhead_ns) const;

  // Slowdown factor alpha (§6.3): sum of actual round completion times over
  // the sum of idealistic round times.
  static double SlowdownFactor(const ModelResult& result);

 private:
  uint32_t num_lps_ = 0;
  // cost_[round][lp], events_[round][lp], pending_[round][lp].
  std::vector<std::vector<uint64_t>> cost_;
  std::vector<std::vector<uint32_t>> events_;
  std::vector<std::vector<uint32_t>> pending_;
};

}  // namespace unison

#endif  // UNISON_SRC_COSTMODEL_COST_MODEL_H_
