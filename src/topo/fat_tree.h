// Fat-tree builders: the standard k-ary fat-tree (Al-Fares et al.) and the
// cluster fat-tree parameterization the paper's evaluation uses (clusters of
// racks behind a shared core layer; footnote 3 of the paper).
#ifndef UNISON_SRC_TOPO_FAT_TREE_H_
#define UNISON_SRC_TOPO_FAT_TREE_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/net/network.h"

namespace unison {

struct FatTreeTopo {
  uint32_t k = 0;
  std::vector<NodeId> hosts;
  std::vector<NodeId> edge_switches;
  std::vector<NodeId> agg_switches;
  std::vector<NodeId> core_switches;
  // Host h belongs to pod PodOfHost(h).
  uint32_t PodOfHost(uint32_t host_index) const { return host_index / (k * k / 4); }
  // Bisection bandwidth in bits per second (core layer capacity).
  uint64_t bisection_bps = 0;
};

// Builds a k-ary fat-tree: k pods, (k/2)^2 hosts per pod, (k/2)^2 cores.
// All links share `bps`; `delay` applies to switch-switch links and
// `host_delay` to host-edge links (pass the same value for uniform delay).
FatTreeTopo BuildFatTree(Network& net, uint32_t k, uint64_t bps, Time delay, Time host_delay);

inline FatTreeTopo BuildFatTree(Network& net, uint32_t k, uint64_t bps, Time delay) {
  return BuildFatTree(net, k, bps, delay, delay);
}

struct ClusterFatTreeTopo {
  uint32_t clusters = 0;
  uint32_t hosts_per_cluster = 0;
  std::vector<NodeId> hosts;          // Grouped by cluster.
  std::vector<NodeId> tor_switches;   // Grouped by cluster.
  std::vector<NodeId> agg_switches;   // Grouped by cluster.
  std::vector<NodeId> core_switches;  // Shared.
  uint32_t ClusterOfHost(uint32_t host_index) const { return host_index / hosts_per_cluster; }
  uint64_t bisection_bps = 0;
};

// Builds a cluster fat-tree: `clusters` clusters, each with
// `hosts_per_rack * racks_per_cluster` hosts behind `racks_per_cluster` ToRs
// and `aggs_per_cluster` aggregation switches; `cores` core switches connect
// every cluster's aggregation layer.
ClusterFatTreeTopo BuildClusterFatTree(Network& net, uint32_t clusters,
                                       uint32_t racks_per_cluster, uint32_t hosts_per_rack,
                                       uint32_t aggs_per_cluster, uint32_t cores,
                                       uint64_t bps, Time delay);

// The paper's symmetric manual partition for the PDES baselines (Fig. 3):
// one LP per pod/cluster, cores distributed round-robin among them.
std::vector<LpId> FatTreePodPartition(const FatTreeTopo& topo, uint32_t num_nodes);
std::vector<LpId> ClusterFatTreePartition(const ClusterFatTreeTopo& topo, uint32_t num_nodes);

}  // namespace unison

#endif  // UNISON_SRC_TOPO_FAT_TREE_H_
