// Wide-area backbone topologies from the Internet Topology Zoo (§6.1):
// GEANT (the European research backbone) and ChinaNet. The graphs are
// embedded snapshots (node lists and adjacency with propagation delays
// derived from rough great-circle distances); the artifact of the paper
// packs the same data files. Each backbone router gets one attached host
// that sources/sinks traffic.
#ifndef UNISON_SRC_TOPO_WAN_H_
#define UNISON_SRC_TOPO_WAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/time.h"
#include "src/net/network.h"

namespace unison {

enum class WanName { kGeant, kChinaNet };

struct WanTopo {
  std::string name;
  std::vector<NodeId> routers;
  std::vector<NodeId> hosts;  // hosts[i] hangs off routers[i].
  uint32_t backbone_links = 0;
  uint64_t bisection_bps = 0;
};

// Builds the named WAN. Backbone links use `bps` and the embedded per-link
// delays; host access links use `bps` and `access_delay`.
WanTopo BuildWan(Network& net, WanName which, uint64_t bps, Time access_delay);

}  // namespace unison

#endif  // UNISON_SRC_TOPO_WAN_H_
