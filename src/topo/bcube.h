// BCube(n, k): the server-centric topology of Guo et al. (SIGCOMM'09).
// n^(k+1) hosts; k+1 switch levels with n^k switches each. Host
// h = (d_k ... d_1 d_0) in base n connects, at level l, to switch number
// (h with digit l removed) in that level.
#ifndef UNISON_SRC_TOPO_BCUBE_H_
#define UNISON_SRC_TOPO_BCUBE_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/net/network.h"

namespace unison {

struct BCubeTopo {
  uint32_t n = 0;
  uint32_t levels = 0;  // k + 1.
  std::vector<NodeId> hosts;
  std::vector<std::vector<NodeId>> switches;  // [level][index].
  // BCube0 group of a host: its digits above level 0 (i.e. host / n).
  uint32_t GroupOfHost(uint32_t host_index) const { return host_index / n; }
  uint64_t bisection_bps = 0;
};

BCubeTopo BuildBCube(Network& net, uint32_t n, uint32_t levels, uint64_t bps, Time delay);

// Manual baseline partition: each BCube0 (n hosts + their level-0 switch) is
// an LP; higher-level switches are distributed round-robin (§6.1).
std::vector<LpId> BCubePartition(const BCubeTopo& topo, uint32_t num_nodes);

}  // namespace unison

#endif  // UNISON_SRC_TOPO_BCUBE_H_
