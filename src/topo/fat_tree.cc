#include "src/topo/fat_tree.h"

namespace unison {

FatTreeTopo BuildFatTree(Network& net, uint32_t k, uint64_t bps, Time delay, Time host_delay) {
  FatTreeTopo topo;
  topo.k = k;
  const uint32_t half = k / 2;
  const uint32_t hosts_per_pod = half * half;
  const uint32_t num_cores = half * half;

  for (uint32_t c = 0; c < num_cores; ++c) {
    topo.core_switches.push_back(net.AddNode());
  }
  for (uint32_t pod = 0; pod < k; ++pod) {
    std::vector<NodeId> aggs;
    std::vector<NodeId> edges;
    for (uint32_t a = 0; a < half; ++a) {
      aggs.push_back(net.AddNode());
    }
    for (uint32_t e = 0; e < half; ++e) {
      edges.push_back(net.AddNode());
    }
    // Edge <-> agg: full bipartite within the pod.
    for (uint32_t e = 0; e < half; ++e) {
      for (uint32_t a = 0; a < half; ++a) {
        net.AddLink(edges[e], aggs[a], bps, delay);
      }
    }
    // Agg a connects to cores [a*half, (a+1)*half).
    for (uint32_t a = 0; a < half; ++a) {
      for (uint32_t c = 0; c < half; ++c) {
        net.AddLink(aggs[a], topo.core_switches[a * half + c], bps, delay);
      }
    }
    // Hosts.
    for (uint32_t e = 0; e < half; ++e) {
      for (uint32_t h = 0; h < half; ++h) {
        const NodeId host = net.AddNode();
        net.AddLink(host, edges[e], bps, host_delay);
        topo.hosts.push_back(host);
      }
    }
    topo.agg_switches.insert(topo.agg_switches.end(), aggs.begin(), aggs.end());
    topo.edge_switches.insert(topo.edge_switches.end(), edges.begin(), edges.end());
  }
  (void)hosts_per_pod;
  topo.bisection_bps = static_cast<uint64_t>(num_cores) * half * bps;
  return topo;
}

ClusterFatTreeTopo BuildClusterFatTree(Network& net, uint32_t clusters,
                                       uint32_t racks_per_cluster, uint32_t hosts_per_rack,
                                       uint32_t aggs_per_cluster, uint32_t cores,
                                       uint64_t bps, Time delay) {
  ClusterFatTreeTopo topo;
  topo.clusters = clusters;
  topo.hosts_per_cluster = racks_per_cluster * hosts_per_rack;

  for (uint32_t c = 0; c < cores; ++c) {
    topo.core_switches.push_back(net.AddNode());
  }
  for (uint32_t cl = 0; cl < clusters; ++cl) {
    std::vector<NodeId> tors;
    std::vector<NodeId> aggs;
    for (uint32_t t = 0; t < racks_per_cluster; ++t) {
      tors.push_back(net.AddNode());
    }
    for (uint32_t a = 0; a < aggs_per_cluster; ++a) {
      aggs.push_back(net.AddNode());
    }
    for (uint32_t t = 0; t < racks_per_cluster; ++t) {
      for (uint32_t a = 0; a < aggs_per_cluster; ++a) {
        net.AddLink(tors[t], aggs[a], bps, delay);
      }
      for (uint32_t h = 0; h < hosts_per_rack; ++h) {
        const NodeId host = net.AddNode();
        net.AddLink(host, tors[t], bps, delay);
        topo.hosts.push_back(host);
      }
    }
    // Each aggregation switch stripes across the core layer.
    for (uint32_t a = 0; a < aggs_per_cluster; ++a) {
      for (uint32_t c = a; c < cores; c += aggs_per_cluster) {
        net.AddLink(aggs[a], topo.core_switches[c], bps, delay);
      }
    }
    topo.tor_switches.insert(topo.tor_switches.end(), tors.begin(), tors.end());
    topo.agg_switches.insert(topo.agg_switches.end(), aggs.begin(), aggs.end());
  }
  topo.bisection_bps = static_cast<uint64_t>(cores) * bps;
  return topo;
}

std::vector<LpId> FatTreePodPartition(const FatTreeTopo& topo, uint32_t num_nodes) {
  std::vector<LpId> lp(num_nodes, 0);
  const uint32_t k = topo.k;
  const uint32_t half = k / 2;
  for (uint32_t i = 0; i < topo.hosts.size(); ++i) {
    lp[topo.hosts[i]] = topo.PodOfHost(i);
  }
  for (uint32_t i = 0; i < topo.edge_switches.size(); ++i) {
    lp[topo.edge_switches[i]] = i / half;
  }
  for (uint32_t i = 0; i < topo.agg_switches.size(); ++i) {
    lp[topo.agg_switches[i]] = i / half;
  }
  // Cores distributed evenly among the pods (Fig. 3).
  for (uint32_t i = 0; i < topo.core_switches.size(); ++i) {
    lp[topo.core_switches[i]] = i % k;
  }
  return lp;
}

std::vector<LpId> ClusterFatTreePartition(const ClusterFatTreeTopo& topo, uint32_t num_nodes) {
  std::vector<LpId> lp(num_nodes, 0);
  const uint32_t clusters = topo.clusters;
  for (uint32_t i = 0; i < topo.hosts.size(); ++i) {
    lp[topo.hosts[i]] = topo.ClusterOfHost(i);
  }
  const uint32_t tors_per_cluster =
      static_cast<uint32_t>(topo.tor_switches.size()) / clusters;
  for (uint32_t i = 0; i < topo.tor_switches.size(); ++i) {
    lp[topo.tor_switches[i]] = i / tors_per_cluster;
  }
  const uint32_t aggs_per_cluster =
      static_cast<uint32_t>(topo.agg_switches.size()) / clusters;
  for (uint32_t i = 0; i < topo.agg_switches.size(); ++i) {
    lp[topo.agg_switches[i]] = i / aggs_per_cluster;
  }
  for (uint32_t i = 0; i < topo.core_switches.size(); ++i) {
    lp[topo.core_switches[i]] = i % clusters;
  }
  return lp;
}

}  // namespace unison
