// Dragonfly (Kim et al., ISCA'08): the HPC-oriented hierarchical topology —
// groups of routers fully meshed internally, one global link between each
// pair of groups. Exercises the partitioner on a graph with two sharply
// different delay classes (short local links, long global links), where the
// median rule cuts exactly the global links.
#ifndef UNISON_SRC_TOPO_DRAGONFLY_H_
#define UNISON_SRC_TOPO_DRAGONFLY_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/net/network.h"

namespace unison {

struct DragonflyTopo {
  uint32_t groups = 0;
  uint32_t routers_per_group = 0;
  uint32_t hosts_per_router = 0;
  std::vector<NodeId> routers;  // Grouped: router (g, r) = routers[g*a + r].
  std::vector<NodeId> hosts;    // Grouped by router.
  uint64_t bisection_bps = 0;
  NodeId RouterAt(uint32_t group, uint32_t index) const {
    return routers[group * routers_per_group + index];
  }
};

// Builds a dragonfly with `groups` groups of `routers_per_group` routers
// (full intra-group mesh at `local_delay`) and one global link between every
// group pair at `global_delay`, assigned round-robin to routers.
DragonflyTopo BuildDragonfly(Network& net, uint32_t groups, uint32_t routers_per_group,
                             uint32_t hosts_per_router, uint64_t bps, Time local_delay,
                             Time global_delay);

}  // namespace unison

#endif  // UNISON_SRC_TOPO_DRAGONFLY_H_
