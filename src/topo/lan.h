// Shared LAN segments: stateful links the partitioner must never cut.
//
// This models the §7 applicability discussion: links whose endpoints share
// state (a shared medium) cannot be split across LPs, so Algorithm 1 keeps
// the whole segment in one logical process. The segment is built as a hub
// node with stateful member links — the hub's queues are the shared state.
#ifndef UNISON_SRC_TOPO_LAN_H_
#define UNISON_SRC_TOPO_LAN_H_

#include <vector>

#include "src/core/time.h"
#include "src/net/network.h"

namespace unison {

struct LanSegment {
  NodeId hub = 0;
  std::vector<uint32_t> member_links;
};

// Attaches `members` to a new shared segment with the given bandwidth and
// per-hop delay. All members (and the hub) will land in the same LP.
LanSegment AddLan(Network& net, const std::vector<NodeId>& members, uint64_t bps,
                  Time delay);

}  // namespace unison

#endif  // UNISON_SRC_TOPO_LAN_H_
