// 2D torus: rows × cols nodes, each a combined host/router with wraparound
// links to its four neighbours — the §6.1 torus setup where node (i, j) has
// id i + rows * j.
#ifndef UNISON_SRC_TOPO_TORUS_H_
#define UNISON_SRC_TOPO_TORUS_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/net/network.h"

namespace unison {

struct TorusTopo {
  uint32_t rows = 0;
  uint32_t cols = 0;
  std::vector<NodeId> nodes;  // All of them; every node is also a host.
  NodeId At(uint32_t i, uint32_t j) const { return nodes[i + rows * j]; }
  uint64_t bisection_bps = 0;
};

TorusTopo BuildTorus2D(Network& net, uint32_t rows, uint32_t cols, uint64_t bps, Time delay);

}  // namespace unison

#endif  // UNISON_SRC_TOPO_TORUS_H_
