#include "src/topo/lan.h"

namespace unison {

LanSegment AddLan(Network& net, const std::vector<NodeId>& members, uint64_t bps,
                  Time delay) {
  LanSegment lan;
  lan.hub = net.AddNode();
  for (NodeId m : members) {
    lan.member_links.push_back(
        net.AddLink(m, lan.hub, bps, delay, net.config().queue, /*stateless=*/false));
  }
  return lan;
}

}  // namespace unison
