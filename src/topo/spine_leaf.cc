#include "src/topo/spine_leaf.h"

namespace unison {

SpineLeafTopo BuildSpineLeaf(Network& net, uint32_t spines, uint32_t leaves,
                             uint32_t hosts_per_leaf, uint64_t bps, Time delay) {
  SpineLeafTopo topo;
  topo.hosts_per_leaf = hosts_per_leaf;
  for (uint32_t s = 0; s < spines; ++s) {
    topo.spines.push_back(net.AddNode());
  }
  for (uint32_t l = 0; l < leaves; ++l) {
    const NodeId leaf = net.AddNode();
    topo.leaves.push_back(leaf);
    for (uint32_t s = 0; s < spines; ++s) {
      net.AddLink(leaf, topo.spines[s], bps, delay);
    }
    for (uint32_t h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host = net.AddNode();
      net.AddLink(host, leaf, bps, delay);
      topo.hosts.push_back(host);
    }
  }
  topo.bisection_bps = static_cast<uint64_t>(spines) * leaves / 2 * bps;
  return topo;
}

}  // namespace unison
