// Spine-leaf (two-tier Clos): every leaf connects to every spine.
#ifndef UNISON_SRC_TOPO_SPINE_LEAF_H_
#define UNISON_SRC_TOPO_SPINE_LEAF_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/net/network.h"

namespace unison {

struct SpineLeafTopo {
  std::vector<NodeId> spines;
  std::vector<NodeId> leaves;
  std::vector<NodeId> hosts;  // Grouped by leaf.
  uint32_t hosts_per_leaf = 0;
  uint32_t LeafOfHost(uint32_t host_index) const { return host_index / hosts_per_leaf; }
  uint64_t bisection_bps = 0;
};

SpineLeafTopo BuildSpineLeaf(Network& net, uint32_t spines, uint32_t leaves,
                             uint32_t hosts_per_leaf, uint64_t bps, Time delay);

}  // namespace unison

#endif  // UNISON_SRC_TOPO_SPINE_LEAF_H_
