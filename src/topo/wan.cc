#include "src/topo/wan.h"

namespace unison {
namespace {

struct WanEdge {
  uint16_t a;
  uint16_t b;
  uint16_t delay_ms;  // One-way propagation delay.
};

// GEANT European research backbone (Topology Zoo snapshot, 40 PoPs).
// Node indices: 0 Amsterdam, 1 London, 2 Paris, 3 Frankfurt, 4 Geneva,
// 5 Milan, 6 Vienna, 7 Prague, 8 Budapest, 9 Warsaw, 10 Copenhagen,
// 11 Stockholm, 12 Oslo, 13 Helsinki, 14 Tallinn, 15 Riga, 16 Kaunas,
// 17 Madrid, 18 Lisbon, 19 Rome, 20 Athens, 21 Sofia, 22 Bucharest,
// 23 Zagreb, 24 Ljubljana, 25 Bratislava, 26 Brussels, 27 Luxembourg,
// 28 Dublin, 29 Zurich, 30 Marseille, 31 Barcelona, 32 Istanbul,
// 33 Nicosia, 34 Valletta, 35 Dubrovnik, 36 Belgrade, 37 Skopje,
// 38 Tirana, 39 Reykjavik.
constexpr WanEdge kGeantEdges[] = {
    {0, 1, 4},  {0, 3, 4},  {0, 10, 6}, {0, 26, 2},  {1, 2, 4},   {1, 28, 5},
    {2, 4, 5},  {2, 30, 7}, {2, 26, 3}, {3, 7, 4},   {3, 4, 5},   {3, 27, 2},
    {3, 9, 8},  {4, 5, 3},  {4, 29, 3}, {5, 19, 5},  {5, 6, 6},   {6, 7, 3},
    {6, 8, 3},  {6, 24, 3}, {6, 25, 1}, {7, 9, 5},   {8, 23, 3},  {8, 22, 6},
    {8, 36, 3}, {9, 16, 4}, {10, 11, 5},{10, 12, 5}, {11, 13, 4}, {11, 12, 4},
    {13, 14, 1},{14, 15, 3},{15, 16, 2},{17, 18, 5}, {17, 31, 5}, {17, 2, 9},
    {18, 1, 12},{19, 20, 9},{19, 34, 6},{20, 21, 5}, {20, 33, 8}, {21, 22, 3},
    {21, 37, 2},{22, 32, 5},{23, 24, 1},{23, 35, 3}, {25, 8, 2},  {26, 27, 2},
    {28, 39, 12},{29, 5, 3},{30, 31, 3},{32, 20, 6}, {36, 37, 3}, {37, 38, 2},
    {38, 20, 4},{35, 38, 3},
};
constexpr uint32_t kGeantNodes = 40;

// ChinaNet backbone (Topology Zoo snapshot, 38 PoPs).
// 0 Beijing, 1 Shanghai, 2 Guangzhou, 3 Wuhan, 4 Xian, 5 Chengdu,
// 6 Shenyang, 7 Nanjing, 8 Hangzhou, 9 Jinan, 10 Tianjin, 11 Chongqing,
// 12 Changsha, 13 Zhengzhou, 14 Shijiazhuang, 15 Taiyuan, 16 Hefei,
// 17 Fuzhou, 18 Nanchang, 19 Kunming, 20 Guiyang, 21 Nanning, 22 Haikou,
// 23 Harbin, 24 Changchun, 25 Hohhot, 26 Urumqi, 27 Lanzhou, 28 Xining,
// 29 Yinchuan, 30 Lhasa, 31 Shenzhen, 32 Xiamen, 33 Qingdao, 34 Dalian,
// 35 Ningbo, 36 Wenzhou, 37 Suzhou.
constexpr WanEdge kChinaNetEdges[] = {
    {0, 1, 5},  {0, 2, 9},  {0, 3, 5},  {0, 6, 3},  {0, 9, 2},  {0, 10, 1},
    {0, 13, 3}, {0, 14, 1}, {0, 15, 2}, {0, 25, 2}, {0, 4, 4},  {1, 2, 6},
    {1, 7, 1},  {1, 8, 1},  {1, 37, 1}, {1, 35, 1}, {2, 3, 4},  {2, 12, 3},
    {2, 21, 3}, {2, 22, 3}, {2, 31, 1}, {3, 13, 2}, {3, 12, 2}, {3, 18, 2},
    {4, 5, 3},  {4, 27, 3}, {4, 13, 2}, {5, 11, 1}, {5, 19, 4}, {5, 30, 6},
    {6, 23, 3}, {6, 24, 2}, {6, 34, 2}, {7, 16, 1}, {8, 36, 1}, {8, 35, 1},
    {9, 33, 2}, {10, 34, 2},{11, 20, 2},{12, 18, 1},{16, 3, 2}, {17, 32, 1},
    {17, 18, 2},{17, 1, 4}, {19, 20, 2},{21, 20, 2},{26, 27, 8},{27, 28, 1},
    {27, 29, 2},{23, 24, 1},{25, 29, 3},{31, 32, 2},{33, 34, 2},{36, 17, 2},
};
constexpr uint32_t kChinaNetNodes = 38;

}  // namespace

WanTopo BuildWan(Network& net, WanName which, uint64_t bps, Time access_delay) {
  WanTopo topo;
  const WanEdge* edges = nullptr;
  uint32_t num_edges = 0;
  uint32_t num_nodes = 0;
  if (which == WanName::kGeant) {
    topo.name = "GEANT";
    edges = kGeantEdges;
    num_edges = static_cast<uint32_t>(std::size(kGeantEdges));
    num_nodes = kGeantNodes;
  } else {
    topo.name = "ChinaNet";
    edges = kChinaNetEdges;
    num_edges = static_cast<uint32_t>(std::size(kChinaNetEdges));
    num_nodes = kChinaNetNodes;
  }

  for (uint32_t i = 0; i < num_nodes; ++i) {
    topo.routers.push_back(net.AddNode());
  }
  for (uint32_t e = 0; e < num_edges; ++e) {
    net.AddLink(topo.routers[edges[e].a], topo.routers[edges[e].b], bps,
                Time::Milliseconds(edges[e].delay_ms));
  }
  topo.backbone_links = num_edges;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    const NodeId host = net.AddNode();
    net.AddLink(host, topo.routers[i], bps, access_delay);
    topo.hosts.push_back(host);
  }
  topo.bisection_bps = static_cast<uint64_t>(num_edges) / 4 * bps;
  return topo;
}

}  // namespace unison
