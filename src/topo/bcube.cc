#include "src/topo/bcube.h"

namespace unison {
namespace {

uint32_t PowU32(uint32_t base, uint32_t exp) {
  uint32_t r = 1;
  for (uint32_t i = 0; i < exp; ++i) {
    r *= base;
  }
  return r;
}

}  // namespace

BCubeTopo BuildBCube(Network& net, uint32_t n, uint32_t levels, uint64_t bps, Time delay) {
  BCubeTopo topo;
  topo.n = n;
  topo.levels = levels;
  const uint32_t k = levels - 1;
  const uint32_t num_hosts = PowU32(n, levels);
  const uint32_t switches_per_level = PowU32(n, k);

  for (uint32_t h = 0; h < num_hosts; ++h) {
    topo.hosts.push_back(net.AddNode());
  }
  topo.switches.resize(levels);
  for (uint32_t l = 0; l < levels; ++l) {
    for (uint32_t s = 0; s < switches_per_level; ++s) {
      topo.switches[l].push_back(net.AddNode());
    }
  }
  // Host h connects at level l to the switch whose index is h with base-n
  // digit l removed.
  for (uint32_t h = 0; h < num_hosts; ++h) {
    for (uint32_t l = 0; l < levels; ++l) {
      const uint32_t low = h % PowU32(n, l);
      const uint32_t high = h / PowU32(n, l + 1);
      const uint32_t sw = high * PowU32(n, l) + low;
      net.AddLink(topo.hosts[h], topo.switches[l][sw], bps, delay);
    }
  }
  topo.bisection_bps = static_cast<uint64_t>(num_hosts) / 2 * bps;
  return topo;
}

std::vector<LpId> BCubePartition(const BCubeTopo& topo, uint32_t num_nodes) {
  std::vector<LpId> lp(num_nodes, 0);
  const uint32_t groups = static_cast<uint32_t>(topo.switches[0].size());
  for (uint32_t h = 0; h < topo.hosts.size(); ++h) {
    lp[topo.hosts[h]] = topo.GroupOfHost(h);
  }
  // Level-0 switch s serves hosts [s*n, (s+1)*n) — its own group.
  for (uint32_t s = 0; s < topo.switches[0].size(); ++s) {
    lp[topo.switches[0][s]] = s;
  }
  for (uint32_t l = 1; l < topo.levels; ++l) {
    for (uint32_t s = 0; s < topo.switches[l].size(); ++s) {
      lp[topo.switches[l][s]] = s % groups;
    }
  }
  return lp;
}

}  // namespace unison
