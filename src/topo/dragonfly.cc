#include "src/topo/dragonfly.h"

namespace unison {

DragonflyTopo BuildDragonfly(Network& net, uint32_t groups, uint32_t routers_per_group,
                             uint32_t hosts_per_router, uint64_t bps, Time local_delay,
                             Time global_delay) {
  DragonflyTopo topo;
  topo.groups = groups;
  topo.routers_per_group = routers_per_group;
  topo.hosts_per_router = hosts_per_router;

  for (uint32_t g = 0; g < groups; ++g) {
    for (uint32_t r = 0; r < routers_per_group; ++r) {
      const NodeId router = net.AddNode();
      topo.routers.push_back(router);
      for (uint32_t h = 0; h < hosts_per_router; ++h) {
        const NodeId host = net.AddNode();
        net.AddLink(host, router, bps, local_delay);
        topo.hosts.push_back(host);
      }
    }
    // Full intra-group mesh.
    for (uint32_t a = 0; a < routers_per_group; ++a) {
      for (uint32_t b = a + 1; b < routers_per_group; ++b) {
        net.AddLink(topo.RouterAt(g, a), topo.RouterAt(g, b), bps, local_delay);
      }
    }
  }
  // One global link per group pair, spread across routers round-robin.
  uint32_t next_port = 0;
  for (uint32_t g1 = 0; g1 < groups; ++g1) {
    for (uint32_t g2 = g1 + 1; g2 < groups; ++g2) {
      const uint32_t r1 = next_port % routers_per_group;
      const uint32_t r2 = (next_port + 1) % routers_per_group;
      net.AddLink(topo.RouterAt(g1, r1), topo.RouterAt(g2, r2), bps, global_delay);
      ++next_port;
    }
  }
  topo.bisection_bps = static_cast<uint64_t>(groups) * groups / 4 * bps;
  return topo;
}

}  // namespace unison
