#include "src/topo/torus.h"

namespace unison {

TorusTopo BuildTorus2D(Network& net, uint32_t rows, uint32_t cols, uint64_t bps, Time delay) {
  TorusTopo topo;
  topo.rows = rows;
  topo.cols = cols;
  topo.nodes.reserve(static_cast<size_t>(rows) * cols);
  for (uint32_t j = 0; j < cols; ++j) {
    for (uint32_t i = 0; i < rows; ++i) {
      (void)i;
      topo.nodes.push_back(net.AddNode());
    }
  }
  for (uint32_t j = 0; j < cols; ++j) {
    for (uint32_t i = 0; i < rows; ++i) {
      // Right and down neighbours with wraparound cover every link once.
      net.AddLink(topo.At(i, j), topo.At((i + 1) % rows, j), bps, delay);
      net.AddLink(topo.At(i, j), topo.At(i, (j + 1) % cols), bps, delay);
    }
  }
  // Cutting the torus in half crosses 2 * 2 * min(rows, cols) links.
  topo.bisection_bps = 4ULL * std::min(rows, cols) * bps;
  return topo;
}

}  // namespace unison
