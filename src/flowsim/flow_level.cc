#include "src/flowsim/flow_level.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/net/network.h"
#include "src/net/node.h"

namespace unison {
namespace {

// Matches Node::Route's per-flow ECMP spreading exactly: the same path-tag
// derivation over the flow's stable identity, fed through the same per-node
// mix, so the fluid model walks the identical path the packet-level flow
// takes.
uint32_t FlowHash(uint32_t path_tag, NodeId node) {
  uint64_t x = (static_cast<uint64_t>(path_tag) << 32) | (node * 0x9e3779b9u + 1);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<uint32_t>(x);
}

}  // namespace

FlowLevelSimulator::FlowLevelSimulator(Network& net) : net_(&net) {
  net.Finalize();
  // Directed link id = global device index, assigned per (node, port).
  uint32_t next = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    next += net.node(n).num_ports();
  }
  capacity_bps_.assign(next, 0);
  uint32_t id = 0;
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    for (uint32_t p = 0; p < net.node(n).num_ports(); ++p) {
      capacity_bps_[id++] = static_cast<double>(net.node(n).device(p)->bps());
    }
  }
}

std::vector<std::vector<uint32_t>> FlowLevelSimulator::PathsOf(
    const std::vector<FluidFlow>& flows) {
  // Precompute the directed-link id base per node.
  std::vector<uint32_t> base(net_->num_nodes() + 1, 0);
  for (NodeId n = 0; n < net_->num_nodes(); ++n) {
    base[n + 1] = base[n] + net_->node(n).num_ports();
  }
  std::vector<std::vector<uint32_t>> paths(flows.size());
  for (size_t f = 0; f < flows.size(); ++f) {
    NodeId at = flows[f].src;
    uint32_t guard = 0;
    while (at != flows[f].dst && guard++ < net_->num_nodes()) {
      const int port = net_->routing().Port(
          at, flows[f].dst,
          FlowHash(EcmpPathTag(flows[f].src, flows[f].dst, flows[f].bytes,
                               flows[f].start.ps()),
                   at));
      if (port < 0) {
        paths[f].clear();  // Unroutable: flow never progresses.
        break;
      }
      paths[f].push_back(base[at] + static_cast<uint32_t>(port));
      at = net_->node(at).device(port)->peer();
    }
  }
  return paths;
}

std::vector<double> FlowLevelSimulator::MaxMinRates(
    const std::vector<std::vector<uint32_t>>& paths,
    const std::vector<double>& capacity_bps) {
  const size_t n = paths.size();
  std::vector<double> rate(n, 0);
  std::vector<bool> fixed(n, false);
  std::vector<double> remaining = capacity_bps;
  std::vector<uint32_t> unfixed_on(capacity_bps.size(), 0);
  for (const auto& path : paths) {
    for (uint32_t l : path) {
      ++unfixed_on[l];
    }
  }
  size_t left = 0;
  for (const auto& path : paths) {
    if (!path.empty()) {
      ++left;
    }
  }
  // Progressive filling: repeatedly saturate the tightest link.
  while (left > 0) {
    double share = std::numeric_limits<double>::infinity();
    for (size_t l = 0; l < capacity_bps.size(); ++l) {
      if (unfixed_on[l] > 0) {
        share = std::min(share, remaining[l] / unfixed_on[l]);
      }
    }
    if (!std::isfinite(share)) {
      break;
    }
    // Fix every unfixed flow crossing a link that saturates at this share.
    bool any = false;
    for (size_t f = 0; f < n; ++f) {
      if (fixed[f] || paths[f].empty()) {
        continue;
      }
      bool bottlenecked = false;
      for (uint32_t l : paths[f]) {
        if (remaining[l] / unfixed_on[l] <= share * (1 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) {
        continue;
      }
      fixed[f] = true;
      rate[f] = share;
      any = true;
      --left;
      for (uint32_t l : paths[f]) {
        remaining[l] -= share;
        --unfixed_on[l];
      }
    }
    if (!any) {
      break;  // Numerical corner: everything unfixed is unconstrained.
    }
  }
  return rate;
}

std::vector<FluidResult> FlowLevelSimulator::Run(const std::vector<FluidFlow>& flows,
                                                 Time horizon) {
  const auto paths = PathsOf(flows);
  std::vector<FluidResult> out(flows.size());
  std::vector<double> remaining_bits(flows.size());
  std::vector<bool> active(flows.size(), false);
  for (size_t f = 0; f < flows.size(); ++f) {
    remaining_bits[f] = static_cast<double>(flows[f].bytes) * 8;
  }

  // Event order: flow arrivals by start time; completions computed on the
  // fly from current rates.
  std::vector<size_t> by_start(flows.size());
  for (size_t i = 0; i < by_start.size(); ++i) {
    by_start[i] = i;
  }
  std::stable_sort(by_start.begin(), by_start.end(), [&flows](size_t a, size_t b) {
    return flows[a].start < flows[b].start;
  });

  size_t next_arrival = 0;
  double now_s = 0;
  const double horizon_s = horizon.ToSeconds();
  std::vector<std::vector<uint32_t>> active_paths;
  std::vector<size_t> active_ids;

  while (now_s < horizon_s) {
    // Assemble the active set and its rates.
    active_paths.clear();
    active_ids.clear();
    for (size_t f = 0; f < flows.size(); ++f) {
      if (active[f]) {
        active_ids.push_back(f);
        active_paths.push_back(paths[f]);
      }
    }
    const std::vector<double> rates = MaxMinRates(active_paths, capacity_bps_);

    // Next event: earliest completion or next arrival.
    double next_event_s = horizon_s;
    size_t completing = SIZE_MAX;
    for (size_t i = 0; i < active_ids.size(); ++i) {
      if (rates[i] > 0) {
        const double t = now_s + remaining_bits[active_ids[i]] / rates[i];
        if (t < next_event_s) {
          next_event_s = t;
          completing = active_ids[i];
        }
      }
    }
    bool arrival = false;
    if (next_arrival < by_start.size()) {
      const double t = flows[by_start[next_arrival]].start.ToSeconds();
      if (t <= next_event_s) {
        next_event_s = t;
        arrival = true;
      }
    }
    if (!arrival && completing == SIZE_MAX && active_ids.empty() &&
        next_arrival >= by_start.size()) {
      break;  // Nothing left to happen.
    }

    // Drain the interval at current rates.
    const double dt = next_event_s - now_s;
    for (size_t i = 0; i < active_ids.size(); ++i) {
      remaining_bits[active_ids[i]] -= rates[i] * dt;
    }
    now_s = next_event_s;

    if (arrival) {
      const size_t f = by_start[next_arrival++];
      active[f] = true;
    } else if (completing != SIZE_MAX) {
      active[completing] = false;
      out[completing].completed = true;
      out[completing].fct =
          Time::Seconds(now_s - flows[completing].start.ToSeconds());
      if (out[completing].fct.ps() > 0) {
        out[completing].mean_rate_bps = static_cast<double>(flows[completing].bytes) *
                                        8 / out[completing].fct.ToSeconds();
      }
      remaining_bits[completing] = 0;
    } else {
      break;  // Horizon reached with no event.
    }
  }
  return out;
}

}  // namespace unison
