// Flow-level network simulation: the "mathematical modeling" alternative the
// paper's related-work section contrasts with DES (§8). Flows are fluids on
// fixed paths; at every arrival or completion the simulator recomputes
// max-min fair rates by progressive filling and advances to the next event.
//
// This is orders of magnitude faster than packet-level DES but blind to
// everything the paper cares about — queues, retransmissions, slow start,
// ECN — which is exactly the comparison bench_ablation_flowsim quantifies.
#ifndef UNISON_SRC_FLOWSIM_FLOW_LEVEL_H_
#define UNISON_SRC_FLOWSIM_FLOW_LEVEL_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/net/packet.h"

namespace unison {

class Network;

struct FluidFlow {
  NodeId src = 0;
  NodeId dst = 0;
  uint64_t bytes = 0;
  Time start;
};

struct FluidResult {
  bool completed = false;
  Time fct;
  double mean_rate_bps = 0;
};

class FlowLevelSimulator {
 public:
  // Captures link capacities and resolves each flow's path with the
  // network's ECMP routing. The network must be finalized; the packet-level
  // simulation itself need not have run.
  explicit FlowLevelSimulator(Network& net);

  // Runs the fluid simulation until `horizon`; flows still active then are
  // reported incomplete.
  std::vector<FluidResult> Run(const std::vector<FluidFlow>& flows, Time horizon);

  // Max-min fair rates (bps) for a static set of active flows, exposed for
  // property tests. rates[i] corresponds to paths[i].
  static std::vector<double> MaxMinRates(
      const std::vector<std::vector<uint32_t>>& paths,
      const std::vector<double>& capacity_bps);

 private:
  // Directed link id for (node, port); capacity per directed link.
  std::vector<double> capacity_bps_;
  std::vector<std::vector<uint32_t>> PathsOf(const std::vector<FluidFlow>& flows);

  Network* net_;
};

}  // namespace unison

#endif  // UNISON_SRC_FLOWSIM_FLOW_LEVEL_H_
